// Allocation-regression tests: the steady-state hot paths of the packer,
// the lattice DP, and the schedule verifier must not allocate. These gates
// back the BENCH_hotpath.json trajectory — a regression here is a perf bug
// even while all behavioural tests stay green.
package gridroute

import (
	"math/rand"
	"testing"

	"context"

	"gridroute/internal/core"
	"gridroute/internal/engine"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
)

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
}

// TestOfferDenseSteadyStateAllocFree: after warm-up (capacity memo filled),
// dense-mode Packer.Offer must allocate nothing.
func TestOfferDenseSteadyStateAllocFree(t *testing.T) {
	skipIfRace(t)
	caps := []float64{3, 5}
	capFn := func(e ipp.EdgeID) float64 { return caps[int(e)%2] }
	p := ipp.NewDense(1<<20, capFn, 256)
	path := []ipp.EdgeID{0, 1, 2, 3, 4, 5}
	p.Offer(path, p.Cost(path)) // warm the capacity memo
	allocs := testing.AllocsPerRun(100, func() {
		p.Offer(path, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense Offer allocates %v/run, want 0", allocs)
	}
}

// TestDPRunWarmAllocFree: a warm DP (buffers grown once) must run both the
// closure and the flat relaxation without allocating.
func TestDPRunWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	b := lattice.NewBox([]int{0, 0}, []int{24, 24})
	edgeX := make([]float64, b.Size()*2)
	nodeX := make([]float64, b.Size())
	rng := rand.New(rand.NewSource(41))
	for i := range edgeX {
		edgeX[i] = rng.Float64()
	}
	dp := b.NewDP()
	src := []int{0, 0}
	dp.RunFlat(b.Lo, b.Hi, src, edgeX, nodeX) // warm the window buffers
	allocs := testing.AllocsPerRun(50, func() {
		dp.RunFlat(b.Lo, b.Hi, src, edgeX, nodeX)
	})
	if allocs != 0 {
		t.Fatalf("warm DP.RunFlat allocates %v/run, want 0", allocs)
	}
	edgeW := func(id, a int) float64 { return edgeX[id*2+a] }
	dp.Run(b.Lo, b.Hi, src, edgeW, nil)
	allocs = testing.AllocsPerRun(50, func() {
		dp.Run(b.Lo, b.Hi, src, edgeW, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm DP.Run allocates %v/run, want 0", allocs)
	}
}

// TestReplayWarmAllocFree: a warm (Replayer, Result) pair must verify a
// schedule set without allocating, in both node models.
func TestReplayWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	g := grid.Line(48, 3, 3)
	reqs := scenario.Uniform(g, 96, 64, rand.New(rand.NewSource(42)))
	res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var rp netsim.Replayer
	var out netsim.Result
	for _, model := range []netsim.Model{netsim.Model1, netsim.Model2} {
		rp.ReplayInto(g, reqs, res.Schedules, model, &out) // warm buffers
		allocs := testing.AllocsPerRun(20, func() {
			rp.ReplayInto(g, reqs, res.Schedules, model, &out)
		})
		if allocs != 0 {
			t.Fatalf("%v: warm ReplayInto allocates %v/run, want 0", model, allocs)
		}
		if len(out.Violation) != 0 {
			t.Fatalf("%v: deterministic schedules violate constraints: %v", model, out.Violation)
		}
	}
}

// saturateEngine builds a Line(64,3,3) engine with the given options and
// admits one fixed packet until the packer cost-rejects it, returning the
// engine and that packet: every further admit of pkt takes the steady-state
// cost-reject path.
func saturateEngine(t *testing.T, opts engine.Options) (*engine.Engine, engine.Packet) {
	t.Helper()
	g := grid.Line(64, 3, 3)
	opts.Horizon = 256
	opts.PMax = core.PMaxDet(g)
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pkt := engine.Packet{Src: grid.Vec{4}, Dst: grid.Vec{40}, Deadline: grid.InfDeadline}
	for i := 0; ; i++ {
		dec, err := eng.Admit(ctx, pkt)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Verdict == engine.RejectedCost {
			return eng, pkt
		}
		if i > 1<<20 {
			t.Fatal("packer never saturated")
		}
	}
}

// TestEngineAdmitWarmAllocFree: the streaming admit path — envelope pool,
// bounded queue, consumer loop, warm sketch session query, packer offer,
// reply — must not allocate once warm. The gate pins the saturated
// cost-reject steady state with warm-start reuse disabled, so the FULL DP
// query runs on every admit (the warm-start skip has its own gate below);
// the accept path additionally retains the route into chunked arenas, which
// is amortized O(1) per accept but not 0.
func TestEngineAdmitWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	eng, pkt := saturateEngine(t, engine.Options{NoWarmStart: true})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := eng.Admit(ctx, pkt)
		if err != nil || dec.Verdict != engine.RejectedCost {
			t.Fatalf("steady state broken: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm engine Admit allocates %v/run, want 0", allocs)
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAdmitWarmStartAllocFree: the same gate for the default engine
// configuration — repeated queries against an unchanged packer take the
// version-delta-0 warm-start path (no DP at all) and must stay 0-alloc.
func TestEngineAdmitWarmStartAllocFree(t *testing.T) {
	skipIfRace(t)
	eng, pkt := saturateEngine(t, engine.Options{})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := eng.Admit(ctx, pkt)
		if err != nil || dec.Verdict != engine.RejectedCost {
			t.Fatalf("steady state broken: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm-start engine Admit allocates %v/run, want 0", allocs)
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAdmitCancelNoLeak: the leak audit for abandoned waits. An Admit
// whose context is already cancelled may abandon the reply; the consumer then
// reclaims the pooled envelope itself. If that handoff leaked, every
// cancelled Admit would allocate a fresh envelope (struct + reply channel) —
// so a warm cancel/admit mix must stay 0-alloc, like the plain warm path.
func TestEngineAdmitCancelNoLeak(t *testing.T) {
	skipIfRace(t)
	eng, pkt := saturateEngine(t, engine.Options{})
	ctx := context.Background()
	dead, cancel := context.WithCancel(ctx)
	cancel()
	allocs := testing.AllocsPerRun(200, func() {
		// Abandoned wait: the packet is queued, the wait is not. The consumer
		// decides it and recycles the envelope.
		if _, err := eng.Admit(dead, pkt); err == nil {
			// The reply can still win the race against the cancelled context;
			// both exits recycle exactly one envelope.
			_ = err
		}
		// A live Admit right after must find a pooled envelope again.
		dec, err := eng.Admit(ctx, pkt)
		if err != nil || dec.Verdict != engine.RejectedCost {
			t.Fatalf("steady state broken: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cancelled Admit path allocates %v/run, want 0 (envelope leak)", allocs)
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Decided() != s.Submitted {
		t.Fatalf("abandoned packets unaccounted: decided %d != submitted %d", s.Decided(), s.Submitted)
	}
}

// TestDPRerunFlatWarmAllocFree: incremental re-relaxation — heap, epoch
// marks and frontier all live in the DP — must not allocate once warm.
func TestDPRerunFlatWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	b := lattice.NewBox([]int{0, 0}, []int{24, 24})
	edgeX := make([]float64, b.Size()*2)
	rng := rand.New(rand.NewSource(43))
	for i := range edgeX {
		edgeX[i] = rng.Float64()
	}
	dp := b.NewDP()
	src := []int{0, 0}
	dp.RunFlat(b.Lo, b.Hi, src, edgeX, nil)
	tile := b.Index([]int{20, 20})
	head, _ := b.Step(tile, 0)
	seeds := []int{head}
	e := tile * 2
	w0 := edgeX[e]
	if !dp.RerunFlat(seeds, edgeX, nil, 0) {
		t.Fatal("warm rerun refused")
	}
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		if flip {
			edgeX[e] = w0 + 0.9
		} else {
			edgeX[e] = w0
		}
		flip = !flip
		if !dp.RerunFlat(seeds, edgeX, nil, 0) {
			t.Fatal("warm rerun refused")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm RerunFlat allocates %v/run, want 0", allocs)
	}
}

// TestDPWavefrontWarmAllocFree: the parallel band pipeline reuses its
// progress counters and band table — a warm parallel RunFlat must not
// allocate on the submitting goroutine or in the workers.
func TestDPWavefrontWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	pool := lattice.NewPool(2)
	defer pool.Close()
	pool.MinWindow = 1
	b := lattice.NewBox([]int{0, 0}, []int{24, 24})
	edgeX := make([]float64, b.Size()*2)
	rng := rand.New(rand.NewSource(44))
	for i := range edgeX {
		edgeX[i] = rng.Float64()
	}
	dp := b.NewDP()
	dp.SetPool(pool)
	src := []int{0, 0}
	dp.RunFlat(b.Lo, b.Hi, src, edgeX, nil)
	allocs := testing.AllocsPerRun(50, func() {
		dp.RunFlat(b.Lo, b.Hi, src, edgeX, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm parallel RunFlat allocates %v/run, want 0", allocs)
	}
}

// TestSTPackerLightestPathWarmAllocFree: the Theorem 13 / dual-bound oracle's
// path search (DP + destination-ray scan) allocates only the returned path
// once warm (1 Path struct + 1 coord slice + 1 axes slice, plus the source
// point — materialized per call by design).
func TestSTPackerLightestPathWarmAllocFree(t *testing.T) {
	skipIfRace(t)
	g := grid.Line(32, 3, 3)
	st := spacetime.New(g, 64)
	sp := optbound.NewSTPacker(st, 3, 3, core.PMaxDet(g))
	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{20}, Arrival: 1, Deadline: grid.InfDeadline}
	if p, _ := sp.LightestPath(r); p == nil {
		t.Fatal("no path on an empty lattice")
	}
	allocs := testing.AllocsPerRun(20, func() {
		sp.LightestPath(r)
	})
	if allocs > 4 {
		t.Fatalf("warm LightestPath allocates %v/run, want ≤ 4 (the returned path)", allocs)
	}
}
