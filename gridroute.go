// Package gridroute is a library for online packet routing in
// uni-directional grids with bounded buffers, reproducing
//
//	Guy Even, Moti Medina: "Online Packet-Routing in Grids with Bounded
//	Buffers", SPAA 2011 (full version arXiv:1407.4498).
//
// It provides the paper's deterministic O(log^{d+4} n)-competitive
// algorithm for d-dimensional grids (with deadlines, bufferless and
// large-capacity variants), the randomized O(log n)-competitive algorithm
// for lines, the greedy and nearest-to-go baselines, a cycle-accurate
// store-and-forward network simulator for verification, workload
// generators, and certified upper bounds on the optimal throughput for
// honest competitive-ratio measurements.
//
// Quick start:
//
//	g, reqs, _ := gridroute.GenerateScenario("uniform", nil) // 64-node line, B = c = 3
//	res, err := gridroute.Deterministic().Route(g, reqs)
//	// res.Throughput packets delivered; res.Violations is empty —
//	// every schedule was replayed on the simulated network.
//
// Workloads come from a registry of named scenarios (Scenarios lists them;
// routesim -list-scenarios prints the catalog) spanning random, bursty,
// heavy-tailed, permutation and adversarial traffic on lines, 2-d grids
// and 3-d lattices.
package gridroute

import (
	"fmt"
	"math/rand"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
)

// Grid is a uni-directional d-dimensional grid network (vertices
// [ℓ1]×…×[ℓd], buffer size B per node, link capacity C).
type Grid = grid.Grid

// Request is a packet request (a_i, b_i, t_i, d_i).
type Request = grid.Request

// Vec is a grid coordinate vector.
type Vec = grid.Vec

// Schedule is an explicit space-time route of one packet.
type Schedule = spacetime.Schedule

// InfDeadline marks requests without deadlines.
const InfDeadline = grid.InfDeadline

// NewGrid constructs a d-dimensional uni-directional grid.
func NewGrid(dims []int, b, c int) *Grid { return grid.New(dims, b, c) }

// NewLine constructs a uni-directional line with n nodes.
func NewLine(n, b, c int) *Grid { return grid.Line(n, b, c) }

// Result is the unified outcome of routing a request sequence.
type Result struct {
	Algorithm string
	// Requests is the number of offered requests; Admitted the number
	// injected; Throughput the number delivered on time.
	Requests   int
	Admitted   int
	Throughput int
	// Schedules holds the executed space-time route per request (nil for
	// requests that were rejected or preempted).
	Schedules []*Schedule
	// Violations lists capacity/buffer violations found when replaying the
	// schedules on the simulated network. A correct run has none.
	Violations []string
	// Detail exposes the algorithm-specific result (*core.DetResult,
	// *core.RandResult, *core.LargeCapResult or *netsim.Result).
	Detail any
}

// Router routes an online request sequence on a grid.
type Router interface {
	Name() string
	Route(g *Grid, reqs []Request) (*Result, error)
}

func verified(name string, g *Grid, reqs []Request, schedules []*Schedule, admitted, throughput int, detail any) *Result {
	rep := netsim.ReplaySchedules(g, reqs, schedules, netsim.Model1)
	return &Result{
		Algorithm:  name,
		Requests:   len(reqs),
		Admitted:   admitted,
		Throughput: throughput,
		Schedules:  schedules,
		Violations: rep.Violation,
		Detail:     detail,
	}
}

type detRouter struct{ cfg core.DetConfig }

// Deterministic returns the paper's deterministic algorithm (Algorithm 1):
// centralized, preemptive, handles deadlines, requires B, c ≥ 3 (or B = 0,
// c ≥ 3 for the bufferless variant of Thm 11).
func Deterministic() Router { return detRouter{} }

// DeterministicWith returns the deterministic algorithm with a custom
// horizon, pmax, or tile side (0 keeps the paper's choice).
func DeterministicWith(horizon int64, pmax, tileSide int) Router {
	return detRouter{cfg: core.DetConfig{Horizon: horizon, PMax: pmax, TileSide: tileSide}}
}

func (detRouter) Name() string { return "even-medina-det" }

func (r detRouter) Route(g *Grid, reqs []Request) (*Result, error) {
	res, err := core.RunDeterministic(g, reqs, r.cfg)
	if err != nil {
		return nil, err
	}
	return verified(r.Name(), g, reqs, res.Schedules, res.Admitted, res.Throughput, res), nil
}

type randRouter struct {
	cfg  core.RandConfig
	seed int64
}

// Randomized returns the paper's randomized O(log n)-competitive algorithm
// for uni-directional lines (Sec. 7), with the paper's constants (γ = 200).
func Randomized(seed int64) Router { return randRouter{seed: seed} }

// RandomizedWith returns the randomized algorithm with an explicit
// sparsification constant γ (engineering mode uses small γ; see DESIGN.md
// E13) and forced branch (0 = fair coin, 1 = Far⁺, 2 = Near).
func RandomizedWith(seed int64, gamma float64, branch int) Router {
	return randRouter{seed: seed, cfg: core.RandConfig{Gamma: gamma, Branch: branch}}
}

func (randRouter) Name() string { return "even-medina-rand" }

func (r randRouter) Route(g *Grid, reqs []Request) (*Result, error) {
	res, err := core.RunRandomized(g, reqs, r.cfg, rand.New(rand.NewSource(r.seed)))
	if err != nil {
		return nil, err
	}
	return verified(r.Name(), g, reqs, res.Schedules, res.Injected, res.Throughput, res), nil
}

type largeCapRouter struct{ cfg core.DetConfig }

// LargeCapacity returns the Theorem 13 algorithm for B, c ≥ log n with
// B/c = n^{O(1)}: non-preemptive scaled path packing over the space-time
// graph, O(log n)-competitive.
func LargeCapacity() Router { return largeCapRouter{} }

func (largeCapRouter) Name() string { return "even-medina-thm13" }

func (r largeCapRouter) Route(g *Grid, reqs []Request) (*Result, error) {
	res, err := core.RunLargeCapacity(g, reqs, r.cfg)
	if err != nil {
		return nil, err
	}
	return verified(r.Name(), g, reqs, res.Schedules, res.Throughput, res.Throughput, res), nil
}

type policyRouter struct {
	pol     netsim.Policy
	horizon int64
}

// Greedy returns the FIFO greedy baseline (Table 1; Ω(√n) lower bound on
// lines [AKOR03]).
func Greedy() Router { return policyRouter{pol: baseline.Greedy{}} }

// NearestToGo returns the nearest-to-go baseline (optimal on bufferless
// lines, Prop. 12; Θ̃(n^{2/3}) on 2-d grids [AKK09]).
func NearestToGo() Router { return policyRouter{pol: baseline.NearestToGo{}} }

// PolicyWithHorizon wraps a baseline with an explicit simulation horizon.
func PolicyWithHorizon(r Router, horizon int64) Router {
	if p, ok := r.(policyRouter); ok {
		p.horizon = horizon
		return p
	}
	return r
}

func (p policyRouter) Name() string { return p.pol.Name() }

func (p policyRouter) Route(g *Grid, reqs []Request) (*Result, error) {
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		return nil, fmt.Errorf("gridroute: invalid request at index %d", i)
	}
	h := p.horizon
	if h == 0 {
		h = spacetime.SuggestHorizon(g, reqs, 3)
	}
	res := netsim.RunLocal(g, reqs, p.pol, netsim.Model1, h)
	out := &Result{
		Algorithm:  p.pol.Name(),
		Requests:   len(reqs),
		Admitted:   len(reqs),
		Throughput: res.Throughput(),
		Detail:     res,
	}
	return out, nil
}

// DualUpperBound returns a certified upper bound on the optimal fractional
// throughput of the instance within horizon T, plus the throughput achieved
// by the certifying packer itself (a feasible lower-bound witness). See
// DESIGN.md §2 on OPT substitution.
func DualUpperBound(g *Grid, reqs []Request, T int64) (upper float64, witness int) {
	return optbound.DualUpperBound(g, reqs, T)
}

// SuggestHorizon returns a simulation horizon comfortably beyond the last
// useful delivery time for the workload.
func SuggestHorizon(g *Grid, reqs []Request, slack int) int64 {
	return spacetime.SuggestHorizon(g, reqs, slack)
}

// ScenarioParam is one typed parameter of a registered scenario: name,
// documentation, default and validity range.
type ScenarioParam = scenario.Param

// ScenarioInfo describes one registered workload scenario.
type ScenarioInfo struct {
	ID     string
	Title  string
	Tags   []string
	Params []ScenarioParam
}

// Scenarios returns the catalog of registered workload scenarios, sorted
// by ID. Each is runnable via GenerateScenario (and `routesim -scenario`).
func Scenarios() []ScenarioInfo {
	scs := scenario.Registered()
	out := make([]ScenarioInfo, len(scs))
	for i, s := range scs {
		out[i] = ScenarioInfo{
			ID:     s.ID,
			Title:  s.Title,
			Tags:   append([]string(nil), s.Tags...),
			Params: append([]ScenarioParam(nil), s.Params...),
		}
	}
	return out
}

// GenerateScenario builds the grid and request sequence of a registered
// scenario. opts overrides the scenario's typed parameters (unknown names
// and out-of-range values are errors); the implicit "seed" parameter
// selects a different random stream, with generation a pure function of
// (id, opts) — byte-identical on every machine.
//
// The former UniformWorkload/SaturatingWorkload/DeadlineWorkload/
// CrossbarWorkload/ConvoyWorkload helpers were replaced by the scenario
// catalog: e.g. UniformWorkload(g, 200, 128, seed) on a 64-node line is
// now GenerateScenario("uniform", map[string]float64{"n": 64, "reqs": 200,
// "maxt": 128, "seed": float64(seed)}).
func GenerateScenario(id string, opts map[string]float64) (*Grid, []Request, error) {
	return scenario.Generate(id, opts)
}
